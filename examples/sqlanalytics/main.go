// SQL analytics: the HiBench-style Join and Aggregation queries of the
// paper's evaluation, executed as real dataflow programs — scan two tables,
// inner-join them, aggregate revenue per page rank — under self-adaptive
// executors. The paper's result for these CPU-heavy queries is that thread
// tuning buys little (Fig. 8c/d); this example shows the adaptive executors
// correctly climbing to the full core count on the scan stages.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strconv"
	"strings"

	"sae"
)

const (
	visits   = 60000
	pages    = 4000
	visitors = 2500
)

type visit struct {
	page    int
	adSpend float64
}

func main() {
	rng := rand.New(rand.NewSource(23))

	// Table 1: uservisits(page, adRevenue) as CSV text.
	visitLines := make([]string, visits)
	for i := range visitLines {
		visitLines[i] = fmt.Sprintf("%d,%d,%.2f", rng.Intn(visitors), rng.Intn(pages), rng.Float64()*10)
	}
	// Table 2: rankings(page, pageRank).
	rankLines := make([]string, pages)
	for p := range rankLines {
		rankLines[p] = fmt.Sprintf("%d,%d", p, 1+rng.Intn(99))
	}

	ctx, err := sae.NewContext(sae.ContextOptions{Policy: sae.Adaptive()})
	if err != nil {
		log.Fatal(err)
	}

	// Scan + parse both tables (the paper's CPU-heavy scan stages).
	uservisits := sae.MapData(sae.TextFile(ctx, "sql/uservisits", visitLines, 32),
		func(line string) sae.Pair[int, visit] {
			f := strings.Split(line, ",")
			page, _ := strconv.Atoi(f[1])
			spend, _ := strconv.ParseFloat(f[2], 64)
			return sae.Pair[int, visit]{Key: page, Value: visit{page: page, adSpend: spend}}
		})
	rankings := sae.MapData(sae.TextFile(ctx, "sql/rankings", rankLines, 8),
		func(line string) sae.Pair[int, int] {
			f := strings.Split(line, ",")
			page, _ := strconv.Atoi(f[0])
			rank, _ := strconv.Atoi(f[1])
			return sae.Pair[int, int]{Key: page, Value: rank}
		})

	// JOIN uservisits u ON rankings r USING (page).
	joined := sae.InnerJoin(rankings, uservisits, 16)

	// SELECT rank/10 AS bucket, SUM(adRevenue) GROUP BY bucket.
	byBucket := sae.MapData(joined, func(p sae.Pair[int, sae.JoinedRow[int, visit]]) sae.Pair[int, float64] {
		return sae.Pair[int, float64]{Key: p.Value.Left / 10, Value: p.Value.Right.adSpend}
	})
	revenue := sae.ReduceByKey(byBucket, func(a, b float64) float64 { return a + b }, 8)

	out, report, err := sae.Collect(revenue)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("aggregated %d visits into %d rank buckets in %.2fs virtual time (%d stages)\n",
		visits, len(out), report.Runtime.Seconds(), len(report.Stages))
	var total float64
	for _, p := range out {
		total += p.Value
	}
	fmt.Printf("total joined ad revenue: %.2f\n", total)
	for _, st := range report.Stages {
		fmt.Printf("  stage %d %-8s %6.2fs  threads %s\n", st.ID, st.Name, st.Duration().Seconds(), st.ThreadsLabel())
	}
	fmt.Println("\nScan stages are CPU-heavy, so the adaptive executors climb while the stage")
	fmt.Println("lasts; at this toy scale stages end mid-climb, while at paper scale the")
	fmt.Println("scans reach 128/128 (run `sae-exp fig8` — Fig. 8c/d annotations).")
}
