// PageRank: real power iteration over a synthetic web graph with the
// dataflow API (the workload where the paper's dynamic solution shines,
// −54% in Fig. 8b), followed by the paper-scale analytic comparison.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"sae"
)

const (
	vertices   = 3000
	iterations = 3
	damping    = 0.85
)

func main() {
	realPageRank()
	paperComparison()
}

func realPageRank() {
	fmt.Println("== part 1: real PageRank iterations (dataflow API) ==")
	// Synthetic graph with a skewed out-degree distribution and two
	// obvious hubs every vertex links to.
	rng := rand.New(rand.NewSource(11))
	var edges []sae.Pair[int, int]
	for v := 0; v < vertices; v++ {
		edges = append(edges, sae.Pair[int, int]{Key: v, Value: 0})
		edges = append(edges, sae.Pair[int, int]{Key: v, Value: 1})
		for d := 0; d < 1+rng.Intn(4); d++ {
			edges = append(edges, sae.Pair[int, int]{Key: v, Value: rng.Intn(vertices)})
		}
	}

	ctx, err := sae.NewContext(sae.ContextOptions{Policy: sae.Adaptive()})
	if err != nil {
		log.Fatal(err)
	}
	links := sae.GroupByKey(sae.Parallelize(ctx, edges, 16), 16)

	ranks := make(map[int]float64, vertices)
	for v := 0; v < vertices; v++ {
		ranks[v] = 1.0
	}
	var totalVirtual float64
	for it := 1; it <= iterations; it++ {
		// contributions: each vertex splits its rank across its links.
		r := ranks
		contribs := sae.FlatMap(links, func(p sae.Pair[int, []int]) []sae.Pair[int, float64] {
			share := r[p.Key] / float64(len(p.Value))
			out := make([]sae.Pair[int, float64], len(p.Value))
			for i, dst := range p.Value {
				out[i] = sae.Pair[int, float64]{Key: dst, Value: share}
			}
			return out
		})
		summed := sae.ReduceByKey(contribs, func(a, b float64) float64 { return a + b }, 16)
		newRanks := sae.MapData(summed, func(p sae.Pair[int, float64]) sae.Pair[int, float64] {
			return sae.Pair[int, float64]{Key: p.Key, Value: (1 - damping) + damping*p.Value}
		})
		out, rep, err := sae.Collect(newRanks)
		if err != nil {
			log.Fatal(err)
		}
		next := make(map[int]float64, vertices)
		for v := 0; v < vertices; v++ {
			next[v] = 1 - damping // dangling default
		}
		for _, p := range out {
			next[p.Key] = p.Value
		}
		ranks = next
		totalVirtual += rep.Runtime.Seconds()
		fmt.Printf("iteration %d: %.2fs virtual, %d stages\n", it, rep.Runtime.Seconds(), len(rep.Stages))
	}

	// The two hubs must outrank everything else.
	type vr struct {
		v int
		r float64
	}
	var all []vr
	for v, r := range ranks {
		all = append(all, vr{v, r})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].r > all[j].r })
	fmt.Printf("top ranks after %d iterations (total %.2fs virtual):\n", iterations, totalVirtual)
	for _, x := range all[:4] {
		fmt.Printf("  vertex %4d  rank %.2f\n", x.v, x.r)
	}
	if !((all[0].v == 0 || all[0].v == 1) && (all[1].v == 0 || all[1].v == 1)) {
		log.Fatalf("hub vertices should rank first, got %v", all[:2])
	}
	fmt.Println()
}

func paperComparison() {
	fmt.Println("== part 2: paper-scale PageRank, default vs dynamic (Fig. 8b) ==")
	setup := sae.DAS5()
	def, err := sae.Run(setup, sae.PageRank(sae.PaperScale()), sae.Default())
	if err != nil {
		log.Fatal(err)
	}
	dyn, err := sae.Run(setup, sae.PageRank(sae.PaperScale()), sae.Adaptive())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("default: %8.1fs\n", def.Runtime.Seconds())
	fmt.Printf("dynamic: %8.1fs  (−%.1f%%, paper reports −54.1%%)\n",
		dyn.Runtime.Seconds(),
		100*(def.Runtime.Seconds()-dyn.Runtime.Seconds())/def.Runtime.Seconds())
	for _, st := range dyn.Stages {
		fmt.Printf("    stage %d %-12s %8.1fs  threads %s\n", st.ID, st.Name, st.Duration().Seconds(), st.ThreadsLabel())
	}
}
