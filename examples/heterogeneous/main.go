// Heterogeneous cluster: the paper's limitation L4 — identical machines do
// not perform identically (Fig. 3), so a single static thread count cannot
// fit all of them. The self-adaptive executors tune each node separately
// (Fig. 6): watch the straggler's executor settle on a different pool size.
package main

import (
	"fmt"
	"log"

	"sae"
)

func main() {
	setup := sae.DAS5()
	// Exaggerate the per-node spread: one node's disk is ~2.6x slower.
	setup.Seed = 2

	fmt.Println("node disk speed factors:")
	slowest, slowestIdx := 10.0, -1
	for i := 0; i < 4; i++ {
		f := sae.NodeSpeedFactor(setup.Seed, i)
		fmt.Printf("  node%03d  %.2fx\n", 303+i, f)
		if f < slowest {
			slowest, slowestIdx = f, i
		}
	}

	w := sae.Terasort(sae.PaperScale())
	def, err := sae.Run(setup, w, sae.Default())
	if err != nil {
		log.Fatal(err)
	}
	dyn, err := sae.Run(setup, sae.Terasort(sae.PaperScale()), sae.Adaptive())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nterasort: default %.1fs, dynamic %.1fs (−%.1f%%)\n",
		def.Runtime.Seconds(), dyn.Runtime.Seconds(),
		100*(def.Runtime.Seconds()-dyn.Runtime.Seconds())/def.Runtime.Seconds())

	fmt.Println("\nper-executor thread choices (dynamic):")
	fmt.Printf("  %-10s", "")
	for s := range dyn.Stages {
		fmt.Printf("  stage%-2d", s)
	}
	fmt.Println()
	for e := 0; e < 4; e++ {
		marker := ""
		if e == slowestIdx {
			marker = "  ← slowest disk"
		}
		fmt.Printf("  executor%-2d", e)
		for _, st := range dyn.Stages {
			fmt.Printf(" %7d", st.Execs[e].FinalThreads)
		}
		fmt.Println(marker)
	}
	fmt.Println("\nEach executor tunes independently — no manual per-node configuration (addresses L4/L5).")
}
