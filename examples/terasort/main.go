// Terasort: the paper's headline workload, twice.
//
// Part 1 runs a *real* miniature terasort through the dataflow API — sample
// the keys, derive range-partition bounds, shuffle-sort, write the output —
// and verifies the result is globally sorted.
//
// Part 2 replays the paper's full-size (120 GiB) Terasort as an analytic
// workload under the three executor policies and prints the Fig. 8a
// comparison.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sae"
)

func main() {
	realSort()
	paperComparison()
}

func realSort() {
	fmt.Println("== part 1: real range-partitioned sort (dataflow API) ==")
	rng := rand.New(rand.NewSource(7))
	records := make([]string, 50000)
	for i := range records {
		records[i] = fmt.Sprintf("%08x-%06d", rng.Uint32(), i)
	}
	less := func(a, b string) bool { return a < b }

	ctx, err := sae.NewContext(sae.ContextOptions{Policy: sae.Adaptive()})
	if err != nil {
		log.Fatal(err)
	}
	input := sae.TextFile(ctx, "terasort/input", records, 32)

	// Stage 0 of the paper's Terasort: sample the input to build the
	// range partitioner.
	sample, _, err := sae.Sample(input, 1000)
	if err != nil {
		log.Fatal(err)
	}
	bounds := sae.Bounds(sample, 16, less)

	// Stages 1–2: shuffle into key ranges, sort, write.
	sorted := sae.RepartitionByRange(input, bounds, less)
	out, report, err := sae.Collect(sorted)
	if err != nil {
		log.Fatal(err)
	}
	for i := 1; i < len(out); i++ {
		if out[i] < out[i-1] {
			log.Fatalf("output not sorted at %d", i)
		}
	}
	fmt.Printf("sorted %d records in %.2fs virtual time (%d stages) — output verified\n\n",
		len(out), report.Runtime.Seconds(), len(report.Stages))
}

func paperComparison() {
	fmt.Println("== part 2: paper-scale Terasort, three policies (Fig. 8a) ==")
	setup := sae.DAS5()
	var defaultSec float64
	for _, pol := range []struct {
		name string
		p    sae.Policy
	}{
		{"default", sae.Default()},
		{"static-8", sae.Static(8)},
		{"dynamic", sae.Adaptive()},
	} {
		rep, err := sae.Run(setup, sae.Terasort(sae.PaperScale()), pol.p)
		if err != nil {
			log.Fatal(err)
		}
		if pol.name == "default" {
			defaultSec = rep.Runtime.Seconds()
		}
		fmt.Printf("%-10s %8.1fs  (%+.1f%% vs default)\n", pol.name, rep.Runtime.Seconds(),
			100*(rep.Runtime.Seconds()-defaultSec)/defaultSec)
		for _, st := range rep.Stages {
			fmt.Printf("    stage %d %-8s %8.1fs  threads %s\n",
				st.ID, st.Name, st.Duration().Seconds(), st.ThreadsLabel())
		}
	}
}
