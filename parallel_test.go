package sae

import (
	"testing"
)

// TestParallelSweepMatchesSequential runs every registered experiment both
// sequentially and on a worker pool and requires byte-identical rendered
// results: parallelism must never leak into simulation outcomes, because
// each run owns its entire simulated world.
func TestParallelSweepMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	s := DAS5().WithScale(0.02)
	ids := ExperimentIDs()

	seq, err := RunExperiments(ids, s, 1)
	if err != nil {
		t.Fatalf("sequential sweep: %v", err)
	}
	par, err := RunExperiments(ids, s, 4)
	if err != nil {
		t.Fatalf("parallel sweep: %v", err)
	}
	if len(seq) != len(par) {
		t.Fatalf("result count: sequential %d, parallel %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Err != nil {
			t.Fatalf("%s: sequential run failed: %v", seq[i].ID, seq[i].Err)
		}
		if par[i].Err != nil {
			t.Fatalf("%s: parallel run failed: %v", par[i].ID, par[i].Err)
		}
		if par[i].ID != seq[i].ID {
			t.Fatalf("result %d out of submission order: sequential %s, parallel %s", i, seq[i].ID, par[i].ID)
		}
		if got, want := par[i].Result.String(), seq[i].Result.String(); got != want {
			t.Errorf("%s: parallel result differs from sequential\nsequential:\n%s\nparallel:\n%s", seq[i].ID, want, got)
		}
	}
}
