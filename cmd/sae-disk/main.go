// Command sae-disk prints the calibrated storage device profiles: aggregate
// bandwidth and the contention (overload) factor against the concurrent
// stream count, for the HDD and SSD models of §6. These curves are what
// make the paper's thread-count effects emerge in the simulator.
package main

import (
	"flag"
	"fmt"
	"os"

	"sae"
)

func main() {
	fs := flag.NewFlagSet("sae-disk", flag.ContinueOnError)
	maxStreams := fs.Int("max", 128, "largest stream count to print")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	for _, spec := range []sae.DiskSpec{sae.HDD(), sae.SSD()} {
		peak, at := spec.Peak()
		fmt.Printf("%s — peak %.0f MB/s at %d streams\n", spec.Name, peak/1e6, at)
		fmt.Printf("  %8s %12s %10s\n", "streams", "B(n) MB/s", "overload")
		for n := 1; n <= *maxStreams; n *= 2 {
			fmt.Printf("  %8d %12.1f %10.2f\n", n, spec.At(n)/1e6, spec.Overload(n))
		}
	}
}
