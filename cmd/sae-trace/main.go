// Command sae-trace analyzes an engine event log written by sae-run -trace
// (either the legacy flat format or the v2 span format) and prints a
// critical-path breakdown per job, an ASCII stage gantt, and per-executor
// utilization timelines. With -metrics it also summarizes a telemetry JSONL
// dump written by sae-run -metrics.
//
// Usage:
//
//	sae-trace [-metrics dump.jsonl] [-width N] trace.jsonl
//
// The critical-path breakdown attributes every instant of the job's makespan
// to the stage that is on the critical path at that instant: among all stages
// active at time t, the one that finishes last (ties broken toward the lower
// stage ID). Instants covered by no stage — scheduling gaps, recovery
// windows — are reported as queue/wait.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"sae/internal/engine"
	"sae/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sae-trace:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("sae-trace", flag.ContinueOnError)
	metricsFile := fs.String("metrics", "", "also summarize this telemetry JSONL dump")
	width := fs.Int("width", 40, "width of the ASCII gantt and utilization bars")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: sae-trace [-metrics dump.jsonl] [-width N] trace.jsonl")
	}
	if *width < 10 {
		*width = 10
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	header, events, err := engine.ReadTraceWithHeader(f)
	if err != nil {
		return err
	}

	a := analyze(events)
	a.width = *width
	if header != nil {
		fmt.Fprintf(w, "trace: %s (v%d, %s), %d events, horizon %s\n",
			fs.Arg(0), header.Version, header.Format, len(events), fmtDur(a.horizon))
	} else {
		fmt.Fprintf(w, "trace: %s (v1, flat), %d events, horizon %s\n",
			fs.Arg(0), len(events), fmtDur(a.horizon))
	}
	a.printJobs(w)
	a.printExecutors(w)

	if *metricsFile != "" {
		mf, err := os.Open(*metricsFile)
		if err != nil {
			return err
		}
		defer mf.Close()
		samples, err := telemetry.ReadJSONL(mf)
		if err != nil {
			return err
		}
		printMetricsSummary(w, *metricsFile, samples)
	}
	return nil
}

// interval is one [start, end) span of activity on the virtual clock.
type interval struct {
	start, end time.Duration
}

func (iv interval) len() time.Duration { return iv.end - iv.start }

// stageRun is one execution (or re-execution after recovery) of a stage.
type stageRun struct {
	id     int
	detail string
	iv     interval
	open   bool
}

// jobTrace is everything the analyzer knows about one job.
type jobTrace struct {
	id     int
	name   string
	iv     interval
	open   bool
	failed string // job_end detail when the job failed
	stages []*stageRun
}

// attempt is one task attempt running on an executor.
type attempt struct {
	iv   interval
	open bool
}

type analysis struct {
	horizon time.Duration
	jobs    []*jobTrace
	execs   map[int][]*attempt
	width   int
}

// analyze folds the flat event list into per-job stage intervals and
// per-executor attempt intervals. Events arrive in time order.
func analyze(events []engine.TraceEvent) *analysis {
	a := &analysis{execs: map[int][]*attempt{}}
	jobs := map[int]*jobTrace{}
	type taskKey struct{ job, stage, task, exec int }
	openAttempts := map[taskKey]*attempt{}

	jobOf := func(id int, at time.Duration) *jobTrace {
		jt, ok := jobs[id]
		if !ok {
			jt = &jobTrace{id: id, iv: interval{start: at}, open: true}
			jobs[id] = jt
			a.jobs = append(a.jobs, jt)
		}
		return jt
	}
	for _, ev := range events {
		at := time.Duration(math.Round(ev.At * 1e9))
		if at > a.horizon {
			a.horizon = at
		}
		switch ev.Type {
		case engine.TraceJobStart:
			jt := jobOf(ev.Job, at)
			jt.name = ev.Detail
			jt.iv.start = at
		case engine.TraceJobEnd:
			jt := jobOf(ev.Job, at)
			jt.iv.end = at
			jt.open = false
			if ev.Stage >= 0 { // failed jobs carry the failing stage + error
				jt.failed = ev.Detail
			}
		case engine.TraceStageStart:
			jt := jobOf(ev.Job, at)
			jt.stages = append(jt.stages, &stageRun{
				id: ev.Stage, detail: ev.Detail,
				iv: interval{start: at}, open: true,
			})
		case engine.TraceStageEnd:
			jt := jobOf(ev.Job, at)
			// Close the most recent open run of this stage; recovery
			// re-executions append a second run under the same ID.
			for i := len(jt.stages) - 1; i >= 0; i-- {
				if s := jt.stages[i]; s.id == ev.Stage && s.open {
					s.iv.end = at
					s.open = false
					break
				}
			}
		case engine.TraceTaskLaunch:
			at0 := &attempt{iv: interval{start: at}, open: true}
			a.execs[ev.Exec] = append(a.execs[ev.Exec], at0)
			openAttempts[taskKey{ev.Job, ev.Stage, ev.Task, ev.Exec}] = at0
		case engine.TraceTaskEnd, engine.TraceTaskFail:
			k := taskKey{ev.Job, ev.Stage, ev.Task, ev.Exec}
			if at0, ok := openAttempts[k]; ok {
				at0.iv.end = at
				at0.open = false
				delete(openAttempts, k)
			}
		case engine.TraceExecCrash, engine.TraceExecLost:
			// Every in-flight attempt on the executor dies with it.
			for k, at0 := range openAttempts {
				if k.exec == ev.Exec {
					at0.iv.end = at
					at0.open = false
					delete(openAttempts, k)
				}
			}
		}
	}
	// Close anything still open at the horizon (truncated traces).
	for _, jt := range a.jobs {
		if jt.open {
			jt.iv.end = a.horizon
		}
		for _, s := range jt.stages {
			if s.open {
				s.iv.end = a.horizon
			}
		}
	}
	for _, ats := range a.execs {
		for _, at0 := range ats {
			if at0.open {
				at0.iv.end = a.horizon
			}
		}
	}
	sort.Slice(a.jobs, func(i, j int) bool { return a.jobs[i].id < a.jobs[j].id })
	return a
}

// criticalPath attributes each instant of the job's makespan to one stage
// (the active stage finishing last, ties toward the lower ID) or to
// queue/wait. Returns per-stage-run durations, index-aligned with jt.stages,
// plus the waiting total.
func criticalPath(jt *jobTrace) (perRun []time.Duration, wait time.Duration) {
	perRun = make([]time.Duration, len(jt.stages))
	cuts := []time.Duration{jt.iv.start, jt.iv.end}
	for _, s := range jt.stages {
		cuts = append(cuts, s.iv.start, s.iv.end)
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	for i := 1; i < len(cuts); i++ {
		a, b := cuts[i-1], cuts[i]
		if b <= a || a < jt.iv.start || b > jt.iv.end {
			continue
		}
		best := -1
		for idx, s := range jt.stages {
			if s.iv.start > a || s.iv.end < b {
				continue // not active over the whole segment
			}
			if best < 0 {
				best = idx
				continue
			}
			bs := jt.stages[best]
			if s.iv.end > bs.iv.end || (s.iv.end == bs.iv.end && s.id < bs.id) {
				best = idx
			}
		}
		if best < 0 {
			wait += b - a
		} else {
			perRun[best] += b - a
		}
	}
	return perRun, wait
}

func (a *analysis) printJobs(w io.Writer) {
	for _, jt := range a.jobs {
		makespan := jt.iv.len()
		name := jt.name
		if name == "" {
			name = fmt.Sprintf("job %d", jt.id)
		}
		fmt.Fprintf(w, "\ncritical path (job %d %q, makespan %s):\n", jt.id, name, fmtDur(makespan))
		if jt.failed != "" {
			fmt.Fprintf(w, "  job failed: %s\n", jt.failed)
		}
		perRun, wait := criticalPath(jt)
		for i, s := range jt.stages {
			if perRun[i] <= 0 {
				continue
			}
			label := fmt.Sprintf("stage %d", s.id)
			if s.detail != "" {
				label += " " + s.detail
			}
			fmt.Fprintf(w, "  %-34s %10s  %5.1f%%\n", label, fmtDur(perRun[i]), pct(perRun[i], makespan))
		}
		if wait > 0 {
			fmt.Fprintf(w, "  %-34s %10s  %5.1f%%\n", "queue/wait", fmtDur(wait), pct(wait, makespan))
		}

		fmt.Fprintf(w, "stage gantt (job %d, %s total):\n", jt.id, fmtDur(makespan))
		for _, s := range jt.stages {
			bar := ganttBar(s.iv, jt.iv, a.width)
			fmt.Fprintf(w, "  stage %2d |%s| %s – %s\n", s.id, bar,
				fmtDur(s.iv.start-jt.iv.start), fmtDur(s.iv.end-jt.iv.start))
		}
	}
}

// ganttBar renders one stage interval as a bar inside the job window.
func ganttBar(iv, win interval, width int) string {
	b := []byte(strings.Repeat(" ", width))
	span := win.len()
	if span <= 0 {
		return string(b)
	}
	lo := int(float64(iv.start-win.start) / float64(span) * float64(width))
	hi := int(math.Ceil(float64(iv.end-win.start) / float64(span) * float64(width)))
	if lo < 0 {
		lo = 0
	}
	if hi > width {
		hi = width
	}
	if hi <= lo {
		hi = lo + 1
		if hi > width {
			lo, hi = width-1, width
		}
	}
	for i := lo; i < hi; i++ {
		b[i] = '#'
	}
	return string(b)
}

func (a *analysis) printExecutors(w io.Writer) {
	if len(a.execs) == 0 || a.horizon <= 0 {
		return
	}
	ids := make([]int, 0, len(a.execs))
	for id := range a.execs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fmt.Fprintf(w, "\nexecutor utilization (horizon %s):\n", fmtDur(a.horizon))
	for _, id := range ids {
		ats := a.execs[id]
		busy := unionLen(ats)
		var taskSec time.Duration
		for _, at0 := range ats {
			taskSec += at0.iv.len()
		}
		strip := utilStrip(ats, a.horizon, a.width)
		fmt.Fprintf(w, "  exec %2d  busy %5.1f%%  avg %4.1f tasks  %4d attempts  [%s]\n",
			id, pct(busy, a.horizon), float64(taskSec)/float64(a.horizon), len(ats), strip)
	}
}

// unionLen is the total time covered by at least one attempt.
func unionLen(ats []*attempt) time.Duration {
	ivs := make([]interval, len(ats))
	for i, at0 := range ats {
		ivs[i] = at0.iv
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
	var total, end time.Duration
	end = -1
	for _, iv := range ivs {
		if iv.start > end {
			total += iv.len()
			end = iv.end
		} else if iv.end > end {
			total += iv.end - end
			end = iv.end
		}
	}
	return total
}

// utilStrip renders average concurrency per time bucket as an ASCII ramp.
func utilStrip(ats []*attempt, horizon time.Duration, width int) string {
	const ramp = " .:-=+*#%@"
	busy := make([]time.Duration, width) // task-time per bucket
	bucket := horizon / time.Duration(width)
	if bucket <= 0 {
		return strings.Repeat(" ", width)
	}
	for _, at0 := range ats {
		for i := 0; i < width; i++ {
			lo := time.Duration(i) * bucket
			hi := lo + bucket
			s, e := at0.iv.start, at0.iv.end
			if s < lo {
				s = lo
			}
			if e > hi {
				e = hi
			}
			if e > s {
				busy[i] += e - s
			}
		}
	}
	var maxConc float64
	conc := make([]float64, width)
	for i, b := range busy {
		conc[i] = float64(b) / float64(bucket)
		if conc[i] > maxConc {
			maxConc = conc[i]
		}
	}
	out := make([]byte, width)
	for i := range out {
		if maxConc <= 0 {
			out[i] = ' '
			continue
		}
		lvl := int(conc[i] / maxConc * float64(len(ramp)-1))
		out[i] = ramp[lvl]
	}
	return string(out)
}

// printMetricsSummary prints one line per metric series in a JSONL dump.
func printMetricsSummary(w io.Writer, path string, samples []telemetry.SamplePoint) {
	type key struct{ metric, labels string }
	type agg struct {
		count               int
		min, max, sum, last float64
	}
	byKey := map[key]*agg{}
	var keys []key
	for _, s := range samples {
		k := key{s.Metric, s.Labels}
		a, ok := byKey[k]
		if !ok {
			a = &agg{min: math.Inf(1), max: math.Inf(-1)}
			byKey[k] = a
			keys = append(keys, k)
		}
		a.count++
		a.sum += s.Value
		a.last = s.Value
		if s.Value < a.min {
			a.min = s.Value
		}
		if s.Value > a.max {
			a.max = s.Value
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].metric != keys[j].metric {
			return keys[i].metric < keys[j].metric
		}
		return keys[i].labels < keys[j].labels
	})
	fmt.Fprintf(w, "\nmetrics summary (%s, %d samples, %d series):\n", path, len(samples), len(keys))
	fmt.Fprintf(w, "  %-44s %6s %12s %12s %12s %12s\n", "series", "n", "min", "mean", "max", "last")
	for _, k := range keys {
		a := byKey[k]
		name := k.metric
		if k.labels != "" {
			name += "{" + k.labels + "}"
		}
		fmt.Fprintf(w, "  %-44s %6d %12s %12s %12s %12s\n", name, a.count,
			fmtVal(a.min), fmtVal(a.sum/float64(a.count)), fmtVal(a.max), fmtVal(a.last))
	}
}

func fmtVal(v float64) string {
	return fmt.Sprintf("%.4g", v)
}

func pct(part, whole time.Duration) float64 {
	if whole <= 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.1fs", d.Seconds())
}
