package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sae"
	"sae/internal/engine"
	"sae/internal/telemetry"
)

func readAnalysis(t *testing.T, r io.Reader) *analysis {
	t.Helper()
	_, events, err := engine.ReadTraceWithHeader(r)
	if err != nil {
		t.Fatal(err)
	}
	return analyze(events)
}

// writeRun executes a small terasort run and writes its trace (and metrics,
// when reg is non-nil) to files under dir, returning the trace path.
func writeRun(t *testing.T, dir string, format int, reg *telemetry.Registry) string {
	t.Helper()
	setup := sae.DAS5().WithScale(0.01)
	var buf bytes.Buffer
	setup.Trace = &buf
	setup.TraceFormat = format
	setup.Metrics = reg
	w, err := sae.WorkloadByName("terasort", sae.WorkloadConfig{Nodes: 4, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sae.Run(setup, w, sae.Adaptive()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "trace.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAnalyzeV2Trace(t *testing.T) {
	dir := t.TempDir()
	path := writeRun(t, dir, 2, nil)

	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"(v2, flat+spans)",
		"critical path (job 0 \"terasort\"",
		"stage gantt",
		"executor utilization",
		"stage 0 sample",
		"exec  0",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestAnalyzeV1Trace(t *testing.T) {
	dir := t.TempDir()
	path := writeRun(t, dir, 0, nil)

	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "(v1, flat)") {
		t.Errorf("v1 trace not recognized:\n%s", got)
	}
	if !strings.Contains(got, "critical path") {
		t.Errorf("no critical path section:\n%s", got)
	}
}

func TestCriticalPathSumsToMakespan(t *testing.T) {
	dir := t.TempDir()
	path := writeRun(t, dir, 2, nil)

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	a := readAnalysis(t, f)
	for _, jt := range a.jobs {
		perRun, wait := criticalPath(jt)
		total := wait
		for _, d := range perRun {
			total += d
		}
		if total != jt.iv.len() {
			t.Errorf("job %d: critical path sums to %s, makespan %s", jt.id, total, jt.iv.len())
		}
	}
}

func TestMetricsSummary(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	path := writeRun(t, dir, 2, reg)
	mpath := filepath.Join(dir, "metrics.jsonl")
	mf, err := os.Create(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteJSONL(mf); err != nil {
		t.Fatal(err)
	}
	mf.Close()

	var out bytes.Buffer
	if err := run([]string{"-metrics", mpath, path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"metrics summary",
		"sae_tasks_done_total",
		"sae_executor_bytes_total{exec=\"0\"}",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("metrics summary missing %q:\n%s", want, got)
		}
	}
}

func TestBadArgs(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("expected usage error with no arguments")
	}
	if err := run([]string{filepath.Join(t.TempDir(), "missing.jsonl")}, &out); err == nil {
		t.Fatal("expected error for missing trace file")
	}
}
