// Command sae-exp regenerates the paper's tables and figures.
//
// Usage:
//
//	sae-exp [-scale F] [-nodes N] [-ssd] [-seed S] [-parallel N] [-audit]
//	        [-shards N] [-scenario FILE]... [experiment ...]
//
// With no arguments it runs every experiment in order. Valid experiment IDs
// are table1, table2 and fig1 … fig12 plus the extension experiments
// (sae-exp -list, which also enumerates the committed scenarios/*.yaml
// specs). -parallel N fans the sweep out over N worker goroutines;
// each run owns its own simulation kernel, and results are printed in
// submission order, so the output is identical to a sequential sweep.
//
// -scenario (repeatable) appends declarative scenario specs to the sweep;
// they run through the same worker pool and -csv export as the built-in
// experiments. The spec's cluster block supplies scale/nodes/seed; -scale,
// -nodes and -seed override it only when given explicitly on the command
// line, so `sae-exp -scale 0.05 -seed 7 -scenario scenarios/autoscale.yaml`
// is byte-identical to `sae-exp -scale 0.05 -seed 7 autoscale`.
//
// -audit attaches the invariant audit plane (internal/invariant) to every
// run in the sweep. The auditor accumulates sequential per-run state, so
// it rejects -parallel > 1; violations print to stderr and exit non-zero,
// while the report stream stays byte-identical (the audit plane never
// perturbs a run).
//
// -shards partitions each run's cluster into N shard kernels under a shared
// clock (see DESIGN.md "Sharded simulation"). Unlike -audit with -parallel,
// no flag combination is rejected: a run whose observers would have to
// interleave output across shards — engine event traces, -audit, telemetry —
// automatically takes the deterministic merge path, where shards step
// sequentially in global event order and every byte matches -shards 1.
// Concurrent shard execution only engages for runs that provably cannot
// tell the difference (qualifying fault sweeps), so -shards composes with
// every other flag, including -parallel (inter-run × intra-run parallelism).
//
// For performance work, -cpuprofile/-memprofile/-trace write pprof CPU and
// heap profiles and a Go execution trace covering the whole sweep.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sae"
	"sae/internal/exp"
	"sae/internal/invariant"
	"sae/internal/prof"
	"sae/internal/scenario"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sae-exp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sae-exp", flag.ContinueOnError)
	scale := fs.Float64("scale", 1, "data scale relative to the paper (1 = full size)")
	nodes := fs.Int("nodes", 4, "cluster size")
	ssd := fs.Bool("ssd", false, "use the SSD device model instead of HDDs")
	seed := fs.Int64("seed", 1, "node-variability seed")
	list := fs.Bool("list", false, "list experiments and exit")
	csvDir := fs.String("csv", "", "also export each artifact's data series as CSV under this directory")
	parallel := fs.Int("parallel", 1, "run experiments on up to N worker goroutines")
	audit := fs.Bool("audit", false, "attach the invariant audit plane to every run (forces -parallel 1); violations print to stderr and exit non-zero")
	shards := fs.Int("shards", 1, "partition each run's cluster into N shard kernels under a shared clock (1 = single kernel)")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile to this file on exit")
	traceFile := fs.String("trace", "", "write a Go execution trace to this file")
	var scenarioFiles multiFlag
	fs.Var(&scenarioFiles, "scenario", "run the scenario spec at this path (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		exps := sae.Experiments()
		for _, id := range sae.ExperimentIDs() {
			fmt.Printf("%-12s %s\n", id, exps[id].Title)
		}
		listScenarios()
		return nil
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile, *traceFile)
	if err != nil {
		return err
	}
	defer func() { _ = stopProf() }()

	setup := sae.DAS5().WithScale(*scale).WithNodes(*nodes)
	setup.Seed = *seed
	if *ssd {
		setup = setup.WithSSD()
	}
	var aud *invariant.Auditor
	if *audit {
		if *parallel > 1 {
			return fmt.Errorf("-audit accumulates sequential per-run state and cannot be combined with -parallel %d", *parallel)
		}
		aud = invariant.New()
		setup.Audit = aud
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be at least 1, got %d", *shards)
	}
	// No guard against -shards with -audit or tracing: runs with observers
	// take the deterministic merge path (byte-identical to -shards 1), so
	// traces cannot interleave nondeterministically by construction.
	setup.Shards = *shards

	ids := fs.Args()
	if len(ids) == 0 && len(scenarioFiles) == 0 {
		ids = sae.ExperimentIDs()
	}
	exps := sae.Experiments()
	var tasks []exp.Task
	for _, id := range ids {
		e, ok := exps[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q (valid: %s)", id, strings.Join(sae.ExperimentIDs(), ", "))
		}
		run := e.Run
		tasks = append(tasks, exp.Task{ID: id, Run: func() (fmt.Stringer, error) { return run(setup) }})
	}
	// Explicit cluster flags override each spec's cluster block; the spec
	// wins over flag defaults, mirroring sae-run -scenario.
	visited := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { visited[f.Name] = true })
	for _, path := range scenarioFiles {
		sp, err := scenario.Load(path)
		if err != nil {
			return err
		}
		s := sp.BaseSetup()
		if visited["scale"] {
			s = s.WithScale(*scale)
		}
		if visited["nodes"] {
			s = s.WithNodes(*nodes)
		}
		if visited["seed"] {
			s.Seed = *seed
		}
		if *ssd {
			s = s.WithSSD()
		}
		if aud != nil {
			s.Audit = aud
		}
		s.Shards = *shards
		c, err := sp.Compile(s)
		if err != nil {
			return err
		}
		tasks = append(tasks, exp.Task{ID: sp.Name, Run: c.Run})
	}

	start := time.Now()
	results := exp.RunParallel(*parallel, tasks)
	var failed []string
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("%s: %w", r.ID, r.Err)
		}
		fmt.Print(r.Result)
		if f, ok := r.Result.(interface{ Failures() []string }); ok {
			for _, msg := range f.Failures() {
				failed = append(failed, fmt.Sprintf("%s: %s", r.ID, msg))
			}
		}
		if *csvDir != "" {
			if tab, ok := r.Result.(exp.Tabular); ok {
				if err := exp.WriteCSV(filepath.Join(*csvDir, r.ID), tab); err != nil {
					return err
				}
			}
		}
		fmt.Printf("  [%s regenerated in %.2fs wall time]\n\n", r.ID, r.Wall.Seconds())
	}
	if *parallel > 1 {
		fmt.Printf("[%d experiments on %d workers in %.2fs wall time]\n", len(results), *parallel, time.Since(start).Seconds())
	}
	if aud != nil {
		if vs := aud.Violations(); len(vs) > 0 {
			for _, v := range vs {
				fmt.Fprintln(os.Stderr, "sae-exp: invariant:", v)
			}
			return fmt.Errorf("%d invariant violation(s)", len(vs))
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("%d scenario expectation(s) failed: %s", len(failed), strings.Join(failed, "; "))
	}
	return nil
}

// listScenarios appends the committed scenario specs to the -list output.
func listScenarios() {
	paths, _ := filepath.Glob(filepath.Join("scenarios", "*.yaml"))
	for _, path := range paths {
		sp, err := scenario.Load(path)
		if err != nil {
			fmt.Printf("%-12s (invalid: %v)\n", path, err)
			continue
		}
		fmt.Printf("%-12s [%s] %s\n", path, sp.Kind, sp.Description)
	}
}

// multiFlag collects repeated flag values.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}
