// Command sae-exp regenerates the paper's tables and figures.
//
// Usage:
//
//	sae-exp [-scale F] [-nodes N] [-ssd] [-seed S] [-parallel N] [experiment ...]
//
// With no arguments it runs every experiment in order. Valid experiment IDs
// are table1, table2 and fig1 … fig12 plus the extension experiments
// (sae-exp -list). -parallel N fans the sweep out over N worker goroutines;
// each run owns its own simulation kernel, and results are printed in
// submission order, so the output is identical to a sequential sweep.
//
// For performance work, -cpuprofile/-memprofile/-trace write pprof CPU and
// heap profiles and a Go execution trace covering the whole sweep.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"sae"
	"sae/internal/exp"
	"sae/internal/prof"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sae-exp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sae-exp", flag.ContinueOnError)
	scale := fs.Float64("scale", 1, "data scale relative to the paper (1 = full size)")
	nodes := fs.Int("nodes", 4, "cluster size")
	ssd := fs.Bool("ssd", false, "use the SSD device model instead of HDDs")
	seed := fs.Int64("seed", 1, "node-variability seed")
	list := fs.Bool("list", false, "list experiments and exit")
	csvDir := fs.String("csv", "", "also export each artifact's data series as CSV under this directory")
	parallel := fs.Int("parallel", 1, "run experiments on up to N worker goroutines")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile to this file on exit")
	traceFile := fs.String("trace", "", "write a Go execution trace to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		exps := sae.Experiments()
		for _, id := range sae.ExperimentIDs() {
			fmt.Printf("%-8s %s\n", id, exps[id].Title)
		}
		return nil
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile, *traceFile)
	if err != nil {
		return err
	}
	defer func() { _ = stopProf() }()

	setup := sae.DAS5().WithScale(*scale).WithNodes(*nodes)
	setup.Seed = *seed
	if *ssd {
		setup = setup.WithSSD()
	}

	ids := fs.Args()
	if len(ids) == 0 {
		ids = sae.ExperimentIDs()
	}
	start := time.Now()
	results, err := sae.RunExperiments(ids, setup, *parallel)
	if err != nil {
		return err
	}
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("%s: %w", r.ID, r.Err)
		}
		fmt.Print(r.Result)
		if *csvDir != "" {
			if tab, ok := r.Result.(exp.Tabular); ok {
				if err := exp.WriteCSV(filepath.Join(*csvDir, r.ID), tab); err != nil {
					return err
				}
			}
		}
		fmt.Printf("  [%s regenerated in %.2fs wall time]\n\n", r.ID, r.Wall.Seconds())
	}
	if *parallel > 1 {
		fmt.Printf("[%d experiments on %d workers in %.2fs wall time]\n", len(results), *parallel, time.Since(start).Seconds())
	}
	return nil
}
