// Command sae-exp regenerates the paper's tables and figures.
//
// Usage:
//
//	sae-exp [-scale F] [-nodes N] [-ssd] [-seed S] [experiment ...]
//
// With no arguments it runs every experiment in order. Valid experiment IDs
// are table1, table2 and fig1 … fig12.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"sae"
	"sae/internal/exp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sae-exp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sae-exp", flag.ContinueOnError)
	scale := fs.Float64("scale", 1, "data scale relative to the paper (1 = full size)")
	nodes := fs.Int("nodes", 4, "cluster size")
	ssd := fs.Bool("ssd", false, "use the SSD device model instead of HDDs")
	seed := fs.Int64("seed", 1, "node-variability seed")
	list := fs.Bool("list", false, "list experiments and exit")
	csvDir := fs.String("csv", "", "also export each artifact's data series as CSV under this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		exps := sae.Experiments()
		for _, id := range sae.ExperimentIDs() {
			fmt.Printf("%-8s %s\n", id, exps[id].Title)
		}
		return nil
	}

	setup := sae.DAS5().WithScale(*scale).WithNodes(*nodes)
	setup.Seed = *seed
	if *ssd {
		setup = setup.WithSSD()
	}

	ids := fs.Args()
	if len(ids) == 0 {
		ids = sae.ExperimentIDs()
	}
	for _, id := range ids {
		start := time.Now()
		res, err := sae.RunExperiment(id, setup)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Print(res)
		if *csvDir != "" {
			if tab, ok := res.(exp.Tabular); ok {
				if err := exp.WriteCSV(filepath.Join(*csvDir, id), tab); err != nil {
					return err
				}
			}
		}
		fmt.Printf("  [%s regenerated in %.2fs wall time]\n\n", id, time.Since(start).Seconds())
	}
	return nil
}
