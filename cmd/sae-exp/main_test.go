package main

import "testing"

func TestListExperiments(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunOneExperimentScaledDown(t *testing.T) {
	if err := run([]string{"-scale", "0.05", "table1", "fig6"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunScenarioSweep(t *testing.T) {
	err := run([]string{
		"-scale", "0.02", "-parallel", "2",
		"-scenario", "../../scenarios/terasort-crash.yaml",
		"-scenario", "../../scenarios/multitenant.yaml",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScenarioMissingFile(t *testing.T) {
	if err := run([]string{"-scenario", "no-such-file.yaml"}); err == nil {
		t.Fatal("missing scenario file accepted")
	}
}
