package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestHuntSmoke(t *testing.T) {
	// A tiny corpus keeps the smoke fast; the seed spec has no chaos, so
	// a couple of runs over the healthy engine must come back clean.
	dir := t.TempDir()
	spec := `version: 1
kind: single
name: smoke
workload: aggregation
policy: dynamic
cluster:
  scale: 0.02
  seed: 1
`
	if err := os.WriteFile(filepath.Join(dir, "smoke.yaml"), []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-seed", "7", "-runs", "2", "-shrink", "2", "-corpus", dir}); err != nil {
		t.Fatal(err)
	}
}

func TestHuntErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-corpus", t.TempDir()}, // no specs
		{"-runs", "x"},
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
