// Command sae-hunt searches the scenario space for invariant violations.
//
// Usage:
//
//	sae-hunt [-seed S] [-runs N] [-scale F] [-corpus DIR] [-out DIR]
//	         [-shrink N] [-v]
//
// The hunter seeds its corpus from the scenario specs in -corpus
// (scenarios/*.yaml by default), executes every seed under the invariant
// audit plane, then mutates specs coverage-guided — chaos clause times,
// factors and targets, arrival mixes, conf knobs within the catalogue,
// cluster shape — looking for runs that break a structural invariant (slot
// or byte conservation, exactly-once shuffle, epoch monotonicity,
// assignment or failure-detector legality; see internal/invariant).
//
// Every violating spec is shrunk to a minimal reproducer and emitted via
// the canonical scenario writer, so the finding replays exactly with
// `sae-run -scenario <finding>.yaml -audit`. The whole hunt is a
// deterministic function of -seed, the corpus, and the options: same
// inputs, same findings, byte for byte.
//
// Exit status is non-zero when any violation was found. A clean hunt over
// the committed corpus is the CI hunt-smoke gate: it proves every golden
// scenario passes all invariants and that a bounded mutation budget finds
// nothing.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sae/internal/hunt"
	"sae/internal/scenario"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sae-hunt:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sae-hunt", flag.ContinueOnError)
	seed := fs.Int64("seed", 7, "mutation PRNG seed; the hunt is a deterministic function of it")
	runs := fs.Int("runs", 16, "scenario executions in the search loop (corpus seeds included)")
	shrink := fs.Int("shrink", 24, "extra executions allowed to minimize each finding")
	scale := fs.Float64("scale", 0.02, "cluster scale override for every spec (0 keeps spec scales)")
	corpusDir := fs.String("corpus", "scenarios", "directory of *.yaml scenario specs seeding the corpus")
	outDir := fs.String("out", "", "write each finding's shrunk reproducer YAML under this directory")
	verbose := fs.Bool("v", false, "log every run")
	if err := fs.Parse(args); err != nil {
		return err
	}

	paths, err := filepath.Glob(filepath.Join(*corpusDir, "*.yaml"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no *.yaml specs under %s", *corpusDir)
	}
	var corpus []*scenario.Spec
	for _, path := range paths {
		sp, err := scenario.Load(path)
		if err != nil {
			return err
		}
		corpus = append(corpus, sp)
	}

	opts := hunt.Options{
		Seed:       *seed,
		Runs:       *runs,
		ShrinkRuns: *shrink,
		Scale:      *scale,
		Corpus:     corpus,
	}
	if *verbose {
		opts.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "sae-hunt: "+format+"\n", args...)
		}
	}
	res, err := hunt.Run(opts)
	if err != nil {
		return err
	}

	fmt.Printf("sae-hunt: seed %d, %d run(s) (+%d shrinking), corpus %d -> %d, %d coverage signal(s)\n",
		*seed, res.Runs, res.ShrinkRuns, res.CorpusIn, res.CorpusOut, len(res.Coverage))
	if len(res.Findings) == 0 {
		fmt.Println("no invariant violations found")
		return nil
	}
	for i, f := range res.Findings {
		fmt.Printf("\nFINDING %d: %s (search run %d, %d shrink run(s), replayed from YAML: %v)\n",
			i+1, f.Rule, f.FoundAt, f.ShrinkRuns, f.Replayed)
		fmt.Printf("  %s\n", f.Violation)
		if *outDir != "" {
			name := fmt.Sprintf("hunt-%s.yaml", sanitize(f.Rule))
			path := filepath.Join(*outDir, name)
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			if err := os.WriteFile(path, f.YAML, 0o644); err != nil {
				return err
			}
			fmt.Printf("  reproducer: %s (replay: sae-run -scenario %s -audit)\n", path, path)
		} else {
			fmt.Printf("  reproducer spec:\n%s", indent(string(f.YAML), "    "))
		}
	}
	return fmt.Errorf("%d invariant violation(s) found", len(res.Findings))
}

func sanitize(rule string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			return r
		default:
			return '-'
		}
	}, rule)
}

func indent(s, prefix string) string {
	lines := strings.SplitAfter(s, "\n")
	var b strings.Builder
	for _, ln := range lines {
		if ln == "" {
			continue
		}
		b.WriteString(prefix)
		b.WriteString(ln)
	}
	return b.String()
}
