// Command sae-bench runs the repository benchmark suites and maintains the
// machine-readable perf trajectory (BENCH_sim.json, BENCH_engine.json).
//
// Usage:
//
//	sae-bench [-suites sim,engine] [-count N] [-out DIR]     # emit/refresh
//	sae-bench -check [-tolerance 20] [-suites ...] [-out DIR] # regression gate
//
// Emit mode measures each benchmark -count times, keeps the fastest run and
// writes BENCH_<suite>.json into -out, preserving any frozen per-benchmark
// "baseline" blocks already present in the files (before/after reference
// numbers such as the pre-overhaul container/heap kernel). Check mode
// re-measures and exits non-zero if any benchmark's ns/op regressed by more
// than -tolerance percent against the committed file — CI runs this so a
// perf regression fails the build like a broken test.
//
// The same benchmark bodies back `go test -bench` (see bench_test.go), so
// numbers are comparable across both harnesses; use `go test -bench` with
// -count and benchstat for noise-aware A/B comparisons during development.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sae/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sae-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sae-bench", flag.ContinueOnError)
	suites := fs.String("suites", "sim,engine", "comma-separated suites to run")
	count := fs.Int("count", 1, "measure each benchmark N times, keep the fastest")
	out := fs.String("out", ".", "directory for BENCH_<suite>.json files")
	check := fs.Bool("check", false, "compare against committed files instead of rewriting them")
	tolerance := fs.Float64("tolerance", 20, "check mode: fail on ns/op regressions above this percent")
	quiet := fs.Bool("q", false, "suppress per-benchmark progress output")
	if err := fs.Parse(args); err != nil {
		return err
	}

	want := make(map[string]bool)
	for _, s := range strings.Split(*suites, ",") {
		if s = strings.TrimSpace(s); s != "" {
			want[s] = true
		}
	}
	verbose := func(line string) { fmt.Fprintln(os.Stderr, line) }
	if *quiet {
		verbose = nil
	}

	ran := 0
	failed := false
	for _, suite := range bench.Suites() {
		if !want[suite.Name] {
			continue
		}
		ran++
		path := filepath.Join(*out, "BENCH_"+suite.Name+".json")
		fresh := bench.RunSuite(suite, *count, verbose)
		if !*check {
			if err := bench.WriteFile(path, fresh); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%d benchmarks)\n", path, len(fresh.Results))
			continue
		}
		committed, err := bench.ReadFile(path)
		if err != nil {
			return fmt.Errorf("check mode needs a committed baseline: %w", err)
		}
		regs := bench.Compare(committed, fresh, *tolerance)
		if len(regs) == 0 {
			fmt.Printf("%s: OK — no benchmark regressed more than %.0f%% vs %s\n", suite.Name, *tolerance, path)
			continue
		}
		failed = true
		for _, r := range regs {
			fmt.Printf("%s: REGRESSION %s: %.1f ns/op -> %.1f ns/op (+%.1f%%)\n",
				suite.Name, r.Name, r.OldNs, r.NewNs, r.RatioPc)
		}
	}
	if ran == 0 {
		return fmt.Errorf("no known suite in %q", *suites)
	}
	if failed {
		return fmt.Errorf("benchmark regression above %.0f%% tolerance", *tolerance)
	}
	return nil
}
