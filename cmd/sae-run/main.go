// Command sae-run executes one workload under one executor sizing policy on
// the simulated cluster and prints the run report.
//
// Usage:
//
//	sae-run [-workload terasort] [-policy dynamic] [-threads 8]
//	        [-scale F] [-nodes N] [-seed S] [-ssd] [-decisions] [-faults SPEC]
//	        [-scenario FILE] [-audit] [-shards N]
//	        [-trace FILE] [-trace-v2] [-metrics FILE] [-metrics-csv FILE]
//	        [-prom FILE] [-metrics-interval D]
//
// Policies: default | static | dynamic. The static policy uses -threads for
// I/O-marked stages.
//
// -scenario runs a declarative scenario spec (scenarios/*.yaml) instead of
// the -workload/-policy/-faults flags, which are rejected alongside it.
// The spec's cluster block supplies scale/nodes/seed; -scale, -nodes and
// -seed override it only when given explicitly, and -conf overrides beat
// the spec's conf block. A spec with an expect block exits non-zero when
// any assertion fails.
//
// -audit attaches the invariant audit plane (slot and byte conservation,
// exactly-once shuffle, epoch and failure-detector legality — see
// internal/invariant): violations print to stderr and the run exits
// non-zero. Attaching it never perturbs the run or its exports.
//
// -shards partitions the simulated cluster into N per-node-group kernels
// under a shared clock (default 1). Qualifying fault runs advance the shards
// concurrently; traced, audited and quiet runs take the deterministic merge
// path, so every report, trace and export stays byte-identical to -shards 1
// (see DESIGN.md "Sharded simulation").
//
// -faults applies a deterministic chaos schedule, e.g. "crash@90s" (kill
// executor 1 at t=90s), "crash2@2m+30s" (kill executor 2 at 2m, restart 30s
// later), "flaky:0.02", "fetch:0.1", "mayhem@10m", combined with commas.
//
// Observability: -trace writes the engine event log (-trace-v2 switches it
// to the v2 format with a versioned header and job→stage→task spans);
// -metrics/-metrics-csv/-prom export the telemetry registry as JSONL or CSV
// time series and Prometheus text exposition, sampled every
// -metrics-interval of virtual time. All exports are deterministic:
// same-seed runs produce byte-identical files. Feed the trace and metrics
// dump to sae-trace for critical-path and utilization analysis.
//
// For performance work, -cpuprofile/-memprofile write pprof CPU and heap
// profiles and -exectrace a Go execution trace (the runtime kind — the
// flag sae-exp calls -trace, renamed here because -trace is the engine
// event log).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sae"
	"sae/internal/conf"
	"sae/internal/invariant"
	"sae/internal/prof"
	"sae/internal/scenario"
	"sae/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sae-run:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sae-run", flag.ContinueOnError)
	workload := fs.String("workload", "terasort", "workload: terasort|pagerank|aggregation|join|scan|bayes|lda|nweight|svm")
	policy := fs.String("policy", "dynamic", "sizing policy: default|static|dynamic")
	threads := fs.Int("threads", 8, "static policy thread count for I/O stages")
	scale := fs.Float64("scale", 1, "data scale relative to the paper")
	nodes := fs.Int("nodes", 4, "cluster size")
	seed := fs.Int64("seed", 1, "node-variability seed")
	ssd := fs.Bool("ssd", false, "use the SSD device model")
	scenarioFile := fs.String("scenario", "", "run the scenario spec at this path instead of -workload/-policy")
	audit := fs.Bool("audit", false, "attach the invariant audit plane; violations print to stderr and exit non-zero")
	shards := fs.Int("shards", 1, "partition the cluster into N shard kernels under a shared clock (1 = single kernel)")
	decisions := fs.Bool("decisions", false, "print the MAPE-K decision log")
	var confFlags multiFlag
	fs.Var(&confFlags, "conf", "configuration override key=value (repeatable, e.g. -conf speculation=true)")
	traceFile := fs.String("trace", "", "write the engine event log (JSON lines) to this file")
	traceV2 := fs.Bool("trace-v2", false, "emit the v2 trace format (versioned header + spans) instead of the legacy flat lines")
	metricsFile := fs.String("metrics", "", "write the telemetry time-series dump (JSON lines) to this file")
	metricsCSV := fs.String("metrics-csv", "", "write the telemetry time-series dump as CSV to this file")
	promFile := fs.String("prom", "", "write end-of-run metrics in Prometheus text exposition to this file")
	metricsInterval := fs.Duration("metrics-interval", 0, "telemetry sampler period in virtual time (0 selects 5s)")
	faults := fs.String("faults", "", "chaos schedule, e.g. crash@90s,flaky:0.02 (see chaos.Parse)")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile to this file on exit")
	exectrace := fs.String("exectrace", "", "write a Go execution trace to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile, *exectrace)
	if err != nil {
		return err
	}
	defer func() { _ = stopProf() }()

	visited := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { visited[f.Name] = true })

	var setup sae.Setup
	var sp *scenario.Spec
	if *scenarioFile != "" {
		for _, name := range []string{"workload", "policy", "threads", "faults", "decisions"} {
			if visited[name] {
				return fmt.Errorf("-%s cannot be combined with -scenario (the spec supplies it)", name)
			}
		}
		sp, err = scenario.Load(*scenarioFile)
		if err != nil {
			return err
		}
		setup = sp.BaseSetup()
		// Explicit cluster flags override the spec's cluster block;
		// the spec wins over flag defaults.
		if visited["scale"] {
			setup = setup.WithScale(*scale)
		}
		if visited["nodes"] {
			setup = setup.WithNodes(*nodes)
		}
		if visited["seed"] {
			setup.Seed = *seed
		}
		if *ssd {
			setup = setup.WithSSD()
		}
	} else {
		setup = sae.DAS5().WithScale(*scale).WithNodes(*nodes)
		setup.Seed = *seed
		if *ssd {
			setup = setup.WithSSD()
		}
	}
	if len(confFlags) > 0 {
		reg := conf.New()
		for _, kv := range confFlags {
			k, v, err := conf.ParseFlag(kv)
			if err != nil {
				return err
			}
			if err := reg.Set(k, v); err != nil {
				return err
			}
		}
		setup.Config = reg
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		setup.Trace = f
	}
	if *traceV2 {
		setup.TraceFormat = 2
	}
	var reg *telemetry.Registry
	if *metricsFile != "" || *metricsCSV != "" || *promFile != "" {
		reg = telemetry.NewRegistry()
		setup.Metrics = reg
		setup.MetricsInterval = *metricsInterval
	}
	var aud *invariant.Auditor
	if *audit {
		aud = invariant.New()
		setup.Audit = aud
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be at least 1, got %d", *shards)
	}
	setup.Shards = *shards
	if sp != nil {
		c, err := sp.Compile(setup)
		if err != nil {
			return err
		}
		res, err := c.Run()
		if err != nil {
			return err
		}
		if reg != nil {
			if err := exportMetrics(reg, *metricsFile, *metricsCSV, *promFile); err != nil {
				return err
			}
		}
		fmt.Print(res)
		if err := auditVerdict(aud); err != nil {
			return err
		}
		if f, ok := res.(interface{ Failures() []string }); ok {
			if fails := f.Failures(); len(fails) > 0 {
				return fmt.Errorf("scenario %s: %d expectation(s) failed: %s",
					sp.Name, len(fails), strings.Join(fails, "; "))
			}
		}
		return nil
	}
	if *faults != "" {
		plan, err := sae.ParseFaults(*faults)
		if err != nil {
			return err
		}
		setup = setup.WithFaults(plan)
	}
	w, err := sae.WorkloadByName(*workload, sae.WorkloadConfig{Nodes: *nodes, Scale: *scale})
	if err != nil {
		return err
	}

	var p sae.Policy
	switch *policy {
	case "default":
		p = sae.Default()
	case "static":
		p = sae.Static(*threads)
	case "dynamic":
		p = sae.Adaptive()
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}

	rep, err := sae.Run(setup, w, p)
	if err != nil {
		return err
	}
	if reg != nil {
		if err := exportMetrics(reg, *metricsFile, *metricsCSV, *promFile); err != nil {
			return err
		}
	}
	fmt.Print(rep)
	if *faults != "" && rep.LostExecutors == 0 && rep.ResubmittedStages == 0 && rep.RecoveredBytes == 0 {
		// The report prints a faults line itself whenever recovery
		// activity happened; confirm the quiet case explicitly.
		fmt.Println("  faults: schedule applied, no executors lost and no stages resubmitted")
	}
	if *decisions {
		for exec, ds := range rep.Decisions {
			for _, d := range ds {
				fmt.Printf("  executor %d, stage %d @%7.1fs → %2d threads: %s\n",
					exec, d.Stage, d.At.Seconds(), d.Threads, d.Reason)
			}
		}
	}
	return auditVerdict(aud)
}

// auditVerdict reports the attached auditor's violations (nil auditor or a
// clean run verdicts nil). Violations go to stderr so they never disturb
// the report stream golden files compare.
func auditVerdict(aud *invariant.Auditor) error {
	if aud == nil {
		return nil
	}
	vs := aud.Violations()
	if len(vs) == 0 {
		return nil
	}
	for _, v := range vs {
		fmt.Fprintln(os.Stderr, "sae-run: invariant:", v)
	}
	return fmt.Errorf("%d invariant violation(s)", len(vs))
}

// exportMetrics writes the run's telemetry registry to the requested files.
func exportMetrics(reg *telemetry.Registry, jsonl, csv, prom string) error {
	write := func(path string, dump func(*os.File) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := dump(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(jsonl, func(f *os.File) error { return reg.WriteJSONL(f) }); err != nil {
		return err
	}
	if err := write(csv, func(f *os.File) error { return reg.WriteCSV(f) }); err != nil {
		return err
	}
	return write(prom, func(f *os.File) error { return reg.WritePrometheus(f) })
}

// multiFlag collects repeated flag values.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}
