// Command sae-run executes one workload under one executor sizing policy on
// the simulated cluster and prints the run report.
//
// Usage:
//
//	sae-run [-workload terasort] [-policy dynamic] [-threads 8]
//	        [-scale F] [-nodes N] [-ssd] [-decisions] [-faults SPEC]
//
// Policies: default | static | dynamic. The static policy uses -threads for
// I/O-marked stages.
//
// -faults applies a deterministic chaos schedule, e.g. "crash@90s" (kill
// executor 1 at t=90s), "crash2@2m+30s" (kill executor 2 at 2m, restart 30s
// later), "flaky:0.02", "fetch:0.1", "mayhem@10m", combined with commas.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sae"
	"sae/internal/conf"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sae-run:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sae-run", flag.ContinueOnError)
	workload := fs.String("workload", "terasort", "workload: terasort|pagerank|aggregation|join|scan|bayes|lda|nweight|svm")
	policy := fs.String("policy", "dynamic", "sizing policy: default|static|dynamic")
	threads := fs.Int("threads", 8, "static policy thread count for I/O stages")
	scale := fs.Float64("scale", 1, "data scale relative to the paper")
	nodes := fs.Int("nodes", 4, "cluster size")
	ssd := fs.Bool("ssd", false, "use the SSD device model")
	decisions := fs.Bool("decisions", false, "print the MAPE-K decision log")
	var confFlags multiFlag
	fs.Var(&confFlags, "conf", "configuration override key=value (repeatable, e.g. -conf speculation=true)")
	traceFile := fs.String("trace", "", "write the engine event log (JSON lines) to this file")
	faults := fs.String("faults", "", "chaos schedule, e.g. crash@90s,flaky:0.02 (see chaos.Parse)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	setup := sae.DAS5().WithScale(*scale).WithNodes(*nodes)
	if *ssd {
		setup = setup.WithSSD()
	}
	if len(confFlags) > 0 {
		reg := conf.New()
		for _, kv := range confFlags {
			k, v, err := conf.ParseFlag(kv)
			if err != nil {
				return err
			}
			if err := reg.Set(k, v); err != nil {
				return err
			}
		}
		setup.Config = reg
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		setup.Trace = f
	}
	if *faults != "" {
		plan, err := sae.ParseFaults(*faults)
		if err != nil {
			return err
		}
		setup = setup.WithFaults(plan)
	}
	w, err := sae.WorkloadByName(*workload, sae.WorkloadConfig{Nodes: *nodes, Scale: *scale})
	if err != nil {
		return err
	}

	var p sae.Policy
	switch *policy {
	case "default":
		p = sae.Default()
	case "static":
		p = sae.Static(*threads)
	case "dynamic":
		p = sae.Adaptive()
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}

	rep, err := sae.Run(setup, w, p)
	if err != nil {
		return err
	}
	fmt.Print(rep)
	if *faults != "" && rep.LostExecutors == 0 && rep.ResubmittedStages == 0 && rep.RecoveredBytes == 0 {
		// The report prints a faults line itself whenever recovery
		// activity happened; confirm the quiet case explicitly.
		fmt.Println("  faults: schedule applied, no executors lost and no stages resubmitted")
	}
	if *decisions {
		for exec, ds := range rep.Decisions {
			for _, d := range ds {
				fmt.Printf("  executor %d, stage %d @%7.1fs → %2d threads: %s\n",
					exec, d.Stage, d.At.Seconds(), d.Threads, d.Reason)
			}
		}
	}
	return nil
}

// multiFlag collects repeated flag values.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}
