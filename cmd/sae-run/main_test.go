package main

import "testing"

func TestRunSmallWorkload(t *testing.T) {
	err := run([]string{"-workload", "aggregation", "-scale", "0.05", "-policy", "static", "-threads", "4"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithConfOverrides(t *testing.T) {
	err := run([]string{
		"-workload", "join", "-scale", "0.05",
		"-conf", "speculation=true", "-conf", "executor.cores=8",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithFaults(t *testing.T) {
	err := run([]string{
		"-workload", "terasort", "-scale", "0.05",
		"-faults", "crash@20s+10s,flaky:0.02",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-workload", "nope"},
		{"-policy", "nope", "-scale", "0.01"},
		{"-conf", "malformed"},
		{"-conf", "no.such.key=1"},
		{"-faults", "bogus@@"},
		{"-scenario", "no-such-file.yaml"},
		{"-scenario", "../../scenarios/faults.yaml", "-workload", "terasort"},
		{"-scenario", "../../scenarios/faults.yaml", "-faults", "crash@20s"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunScenario(t *testing.T) {
	err := run([]string{"-scenario", "../../scenarios/terasort-crash.yaml", "-scale", "0.05"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunScenarioConfOverride(t *testing.T) {
	err := run([]string{
		"-scenario", "../../scenarios/terasort-crash.yaml", "-scale", "0.05",
		"-conf", "shuffle.io.maxRetries=9",
	})
	if err != nil {
		t.Fatal(err)
	}
}
