package sae

// One benchmark per table and figure of the paper's evaluation. Each
// iteration regenerates the artifact at full paper scale on the simulated
// cluster; headline quantities are attached as custom metrics so the shape
// comparison with the paper is visible in benchmark output. Run with:
//
//	go test -bench=. -benchmem
//
// Plus micro-benchmarks of the load-bearing substrates.

import (
	"fmt"
	"strings"
	"testing"

	"sae/internal/bench"
	"sae/internal/core"
	"sae/internal/engine/job"
	"sae/internal/exp"
	"sae/internal/metrics"
)

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Table1()
		if r.Total != 117 {
			b.Fatalf("total = %d", r.Total)
		}
		b.ReportMetric(float64(r.Total), "parameters")
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Table2(exp.Default())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.App == "terasort" {
				b.ReportMetric(row.DiffPct, "terasort-io-diff-%")
			}
		}
	}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Figure1(exp.Default())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Apps[0].Stages[0].CPUPct, "terasort-s0-cpu-%")
		b.ReportMetric(r.Apps[0].Stages[0].IowaitPct, "terasort-s0-iowait-%")
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ts, _, err := exp.Figure2(exp.Default())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(exp.Reduction(ts.Default, ts.BestFit), "terasort-bestfit-red-%")
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Figure3(exp.Default())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MaxOverMinRd, "read-maxmin-x")
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		agg, _, err := exp.Figure4(exp.Default())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(exp.Reduction(agg.Default, agg.BestFit), "aggregation-bestfit-red-%")
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Figure5(exp.Default())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Panels[0].UtilPct[0], "terasort-s0-util-at-32-%")
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Figure6(exp.Default())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Threads[0][0]), "exec0-s0-threads")
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Figure7(exp.Default())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Stages[0].Selected), "s0-selected-threads")
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Figure8(exp.Default())
		if err != nil {
			b.Fatal(err)
		}
		for _, app := range r.Apps {
			b.ReportMetric(app.DynamicRed, app.App+"-dyn-red-%")
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Figure9(exp.Default())
		if err != nil {
			b.Fatal(err)
		}
		var d4, d16 float64
		for _, row := range r.Rows {
			if row.Policy == "default" {
				if row.Nodes == 4 {
					d4 = row.Seconds
				} else {
					d16 = row.Seconds
				}
			}
		}
		b.ReportMetric(d16/d4, "default-16v4-slowdown-x")
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hdd, ssd, err := exp.Figure10(exp.Default())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(exp.Reduction(hdd.Default, hdd.BestFit), "hdd-bestfit-red-%")
		b.ReportMetric(exp.Reduction(ssd.Default, ssd.BestFit), "ssd-bestfit-red-%")
	}
}

func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Figure11(exp.Default())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.App.DynamicRed, "ssd-dyn-red-%")
	}
}

func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Figure12(exp.Default())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range r.Panels {
			if p.Stage == 0 && p.Disk == "HDD" {
				b.ReportMetric(p.Mean[4], "hdd-s0-mean-MBps-at-4")
			}
		}
	}
}

// ---------------------------------------------------------------- substrates
//
// The substrate and engine benchmark bodies live in internal/bench so the
// sae-bench command (which emits the BENCH_*.json perf trajectory and gates
// CI on regressions) runs exactly the same workloads as `go test -bench`.

// BenchmarkSimKernel measures raw event throughput of the DES kernel on the
// same-instant ring fast lane.
func BenchmarkSimKernel(b *testing.B) { bench.KernelRing(b) }

// BenchmarkSimKernelHeap measures the 4-ary heap under pseudo-random
// future-time inserts.
func BenchmarkSimKernelHeap(b *testing.B) { bench.KernelHeap(b) }

// BenchmarkSimTimerChurn measures the heartbeat-deadline pattern: one timer
// rescheduled in place per simulated beat.
func BenchmarkSimTimerChurn(b *testing.B) { bench.KernelTimerChurn(b) }

// BenchmarkSimEvery measures the periodic-event primitive.
func BenchmarkSimEvery(b *testing.B) { bench.KernelEvery(b) }

// BenchmarkSimCancel measures cancel-heavy (speculation-timer) churn with
// lazy cancellation and heap compaction.
func BenchmarkSimCancel(b *testing.B) { bench.KernelCancel(b) }

// BenchmarkProcessSwitch measures process park/resume round trips.
func BenchmarkProcessSwitch(b *testing.B) { bench.ProcessSwitch(b) }

// BenchmarkProcessPingPong measures cross-goroutine baton handoffs between
// two processes.
func BenchmarkProcessPingPong(b *testing.B) { bench.ProcessPingPong(b) }

// BenchmarkProcessorSharing measures the disk model under churn.
func BenchmarkProcessorSharing(b *testing.B) { bench.ProcessorSharing(b) }

// BenchmarkArrivalGen measures open-loop traffic generation: the thinning
// draw plus kernel dispatch of every submission.
func BenchmarkArrivalGen(b *testing.B) { bench.ArrivalGen(b) }

// BenchmarkShardedMatrix measures one 256-executor grayfail run on one, two
// and four shard kernels — the windowed coordinator's intra-run parallelism
// surface. Speedup scales with min(GOMAXPROCS, shards).
func BenchmarkShardedMatrix(b *testing.B) {
	b.Run("shards=1", bench.ShardedMatrix1)
	b.Run("shards=2", bench.ShardedMatrix2)
	b.Run("shards=4", bench.ShardedMatrix4)
}

// BenchmarkDynamicController measures MAPE-K decision overhead.
func BenchmarkDynamicController(b *testing.B) {
	c := core.DefaultDynamic().NewController(job.ExecutorInfo{MaxThreads: 32})
	c.StageStart(job.StageMeta{ID: 0, NumTasks: 1 << 30, IOMarked: true})
	tm := job.TaskMetrics{Stage: 0, BlockedIO: 1e6, BytesMoved: 1 << 20, End: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Start = tm.End
		tm.End += 1e9
		c.TaskDone(tm)
	}
}

// BenchmarkCongestionIndex measures the analyzer's ζ computation.
func BenchmarkCongestionIndex(b *testing.B) {
	iv := metrics.Interval{Start: 0, End: 1e9, BlockedIO: 5e8, Bytes: 1 << 30, Tasks: 8}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += iv.Congestion()
	}
	_ = sink
}

// BenchmarkEngineTerasort measures a full paper-scale engine run, with
// kernel events/sec and the sim-time-over-wall-time speedup attached.
func BenchmarkEngineTerasort(b *testing.B) { bench.EngineTerasort(b) }

// BenchmarkRDDWordCount measures the dataflow layer end to end.
func BenchmarkRDDWordCount(b *testing.B) {
	lines := make([]string, 5000)
	for i := range lines {
		lines[i] = fmt.Sprintf("alpha beta gamma delta %d", i%97)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, err := NewContext(ContextOptions{Policy: Default()})
		if err != nil {
			b.Fatal(err)
		}
		text := TextFile(ctx, "bench/in", lines, 16)
		words := FlatMap(text, func(l string) []string { return strings.Fields(l) })
		pairs := MapData(words, func(w string) Pair[string, int] { return Pair[string, int]{Key: w, Value: 1} })
		counts := ReduceByKey(pairs, func(a, b int) int { return a + b }, 8)
		out, _, err := Collect(counts)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkFaults regenerates the fault-tolerance matrix: Terasort under
// quiet, crash, crash-restart and flaky chaos schedules for each policy.
func BenchmarkFaults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Faults(exp.Default())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Policy == "dynamic" && strings.Contains(row.Schedule, "+") {
				b.ReportMetric(row.DegradedPct, "dyn-crash-restart-degraded-%")
				b.ReportMetric(float64(row.Requeued), "dyn-crash-restart-requeued")
			}
		}
	}
}

// BenchmarkGrayFail regenerates the gray-failure matrix: Terasort under a
// slow node, a heartbeat-dropping partition and corrupt DFS replicas, for
// each policy. The headline metric is the dynamic policy completing under
// a degraded (slow, not dead) node.
func BenchmarkGrayFail(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.GrayFail(exp.Default())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Policy != "dynamic" {
				continue
			}
			switch {
			case strings.HasPrefix(row.Schedule, "slow"):
				b.ReportMetric(row.Seconds, "dyn-slow-runtime-s")
				b.ReportMetric(row.DegradedPct, "dyn-slow-degraded-%")
			case strings.HasPrefix(row.Schedule, "partition"):
				b.ReportMetric(float64(row.Suspected), "dyn-partition-suspected")
				b.ReportMetric(float64(row.Fenced), "dyn-partition-fenced")
			case strings.HasPrefix(row.Schedule, "corrupt"):
				b.ReportMetric(float64(row.ChecksumFailovers), "dyn-corrupt-failovers")
			}
		}
	}
}

// BenchmarkMultiTenant regenerates the multi-tenancy matrix: concurrent
// Terasort/PageRank mixes under FIFO and fair sharing, with default and
// dynamic executor sizing.
func BenchmarkMultiTenant(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.MultiTenant(exp.Default())
		if err != nil {
			b.Fatal(err)
		}
		if row, ok := r.Get("terasort+pagerank", "FAIR", "dynamic"); ok {
			b.ReportMetric(row.MakespanSec, "ts+pr-fair-dyn-makespan-s")
			b.ReportMetric(row.MeanJobSec, "ts+pr-fair-dyn-meanjob-s")
		}
		if row, ok := r.Get("terasort+pagerank", "FIFO", "default"); ok {
			b.ReportMetric(row.MakespanSec, "ts+pr-fifo-def-makespan-s")
		}
	}
}

// BenchmarkAblation regenerates the §5.2 design-choice ablation table.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Ablation(exp.Default())
		if err != nil {
			b.Fatal(err)
		}
		if row, ok := r.Get("terasort", "dynamic"); ok {
			b.ReportMetric(row.RedVsDefault, "terasort-dyn-red-%")
		}
		if row, ok := r.Get("terasort", "utilization-driven"); ok {
			b.ReportMetric(row.RedVsDefault, "terasort-util-red-%")
		}
	}
}
