module sae

go 1.24
