// Package sae (self-adaptive executors) is a from-scratch reproduction of
// "Self-adaptive Executors for Big Data Processing" (Omranian Khorasani,
// Rellermeyer, Epema — Middleware 2019) as a Go library.
//
// The package bundles:
//
//   - a deterministic discrete-event cluster simulator with calibrated
//     HDD/SSD, SMT-CPU and network models;
//   - a Spark-like dataflow engine (stages, shuffle, locality-aware driver,
//     per-node executors with resizable worker pools);
//   - the paper's executor sizing policies: the stock default, the §4
//     static solution, the per-stage BestFit composition, and the §5
//     MAPE-K self-adaptive (dynamic) executor;
//   - the nine HiBench-style workload models of the evaluation;
//   - a typed RDD layer executing real data through the same engine;
//   - an experiment harness regenerating every table and figure.
//
// Quick start:
//
//	report, err := sae.Run(sae.DAS5(), sae.Terasort(sae.PaperScale()), sae.Adaptive())
//
// or build a real dataflow program:
//
//	ctx, _ := sae.NewContext(sae.ContextOptions{Policy: sae.Adaptive()})
//	lines := sae.TextFile(ctx, "in", data, 64)
//	counts := sae.ReduceByKey(sae.MapData(words, toPair), add, 32)
//	out, report, err := sae.Collect(counts)
package sae

import (
	"sae/internal/chaos"
	"sae/internal/cluster"
	"sae/internal/core"
	"sae/internal/device"
	"sae/internal/engine"
	"sae/internal/engine/job"
	"sae/internal/exp"
	"sae/internal/workloads"
)

// Re-exported core types.
type (
	// Policy sizes executor thread pools per stage.
	Policy = job.Policy
	// JobReport summarizes one job run.
	JobReport = engine.JobReport
	// StageReport summarizes one stage of a run.
	StageReport = engine.StageReport
	// Workload bundles a job and its inputs.
	Workload = workloads.Spec
	// WorkloadConfig scales a workload.
	WorkloadConfig = workloads.Config
	// Setup fixes the simulated environment for runs and experiments.
	Setup = exp.Setup
	// ClusterConfig describes the simulated hardware.
	ClusterConfig = cluster.Config
	// DiskSpec is a storage device profile.
	DiskSpec = device.DiskSpec
	// FaultPlan is a deterministic chaos schedule (executor crashes,
	// transient task and fetch faults) applied to a run via
	// Setup.WithFaults or ContextOptions.Faults.
	FaultPlan = chaos.Plan
	// InterJobPolicy orders concurrent jobs competing for executor slots
	// (see FIFO and FairSharing).
	InterJobPolicy = engine.InterJobPolicy
)

// Default returns stock Spark behaviour: one worker thread per virtual
// core, fixed for the whole application.
func Default() Policy { return core.Default{} }

// Static returns the paper's §4 solution: ioThreads worker threads for
// structurally I/O-marked stages, the default elsewhere.
func Static(ioThreads int) Policy { return core.Static{IOThreads: ioThreads} }

// BestFit pins an explicit thread count per stage ID (the paper's
// hypothetical per-stage optimum composition).
func BestFit(threads map[int]int) Policy { return core.BestFit{Threads: threads} }

// Adaptive returns the paper's §5 self-adaptive executor policy: a MAPE-K
// loop per executor that hill-climbs the pool size on the congestion index
// ζ = ε/µ.
func Adaptive() Policy { return core.DefaultDynamic() }

// AdaptiveWith returns the dynamic policy with explicit hill-climb
// parameters (cmin and the ζ rollback tolerance).
func AdaptiveWith(cmin int, tolerance float64) Policy {
	return core.Dynamic{Cmin: cmin, Tolerance: tolerance}
}

// DAS5 returns the paper's evaluation environment: 4 nodes × 32 virtual
// cores with 7'200 rpm HDDs.
func DAS5() Setup { return exp.Default() }

// HDD and SSD return the calibrated storage device profiles of §6.
func HDD() DiskSpec { return device.HDD7200() }

// SSD returns the SATA SSD profile of §6.3.
func SSD() DiskSpec { return device.SSDSata() }

// PaperScale returns the paper's full data sizes on 4 nodes.
func PaperScale() WorkloadConfig { return workloads.Paper() }

// ScaledDown returns a workload configuration shrunk by factor (e.g. 0.05
// for fast experimentation).
func ScaledDown(scale float64) WorkloadConfig {
	return workloads.Config{Nodes: 4, Scale: scale}
}

// Workload constructors (the nine applications of Tables 2/3).
var (
	Terasort    = workloads.Terasort
	PageRank    = workloads.PageRank
	Aggregation = workloads.Aggregation
	Join        = workloads.Join
	Scan        = workloads.Scan
	Bayes       = workloads.Bayes
	LDA         = workloads.LDA
	NWeight     = workloads.NWeight
	SVM         = workloads.SVM
)

// WorkloadByName returns a workload constructor result by HiBench name.
func WorkloadByName(name string, cfg WorkloadConfig) (*Workload, error) {
	return workloads.ByName(name, cfg)
}

// AllWorkloads returns the nine Table 2 applications.
func AllWorkloads(cfg WorkloadConfig) []*Workload { return workloads.All(cfg) }

// Run executes one workload under one policy in the given environment.
func Run(s Setup, w *Workload, p Policy) (*JobReport, error) {
	return s.Run(w, p, nil)
}

// FIFO returns the inter-job scheduler that runs jobs in submission order.
func FIFO() InterJobPolicy { return engine.FIFO{} }

// FairSharing returns the inter-job scheduler that splits executor slots
// evenly between the jobs currently running.
func FairSharing() InterJobPolicy { return engine.Fair{} }

// RunMulti executes several workloads concurrently on one engine under the
// given inter-job scheduler, returning one report per workload in
// submission order.
func RunMulti(s Setup, ws []*Workload, p Policy, sched InterJobPolicy) ([]*JobReport, error) {
	return s.RunMulti(ws, p, sched)
}

// ParseFaults parses a chaos schedule spec, e.g. "crash@90s",
// "crash2@2m+30s,flaky:0.02,seed:7", "mayhem@10m" or "quiet". Gray-failure
// clauses degrade instead of kill: "slow:1@60sx4" throttles a node's
// devices 4x, "partition:2@90s+45s" drops an executor's heartbeats and
// shuffle fetches while its tasks keep running, and "corrupt:0.02" rots
// that fraction of DFS replicas (reads fail the checksum and fail over).
// See chaos.Parse for the grammar.
func ParseFaults(spec string) (*FaultPlan, error) { return chaos.Parse(spec) }

// NodeSpeedFactor returns the deterministic disk speed factor the
// variability model assigns to node i under the given seed (1 = nominal;
// stragglers fall well below — Fig. 3).
func NodeSpeedFactor(seed int64, i int) float64 {
	return device.DefaultVariability(seed).Factor(i)
}
